//! Registry of the paper's benchmark graphs (Table 6) and scaled synthetic
//! stand-ins.
//!
//! The real datasets (Reddit, ogbn-products, MAG, IGB-large, Papers100M)
//! are not available in this environment. Each [`Dataset`] records the
//! published statistics and can generate a deterministic R-MAT graph whose
//! node count, average degree, degree skew, feature width, and class count
//! match the original at a configurable scale factor.

use crate::csr::{Csr, NodeId};
use crate::features::FeatureStore;
use crate::generate::rmat::{self, RmatConfig};
use crate::partition::NodeSplit;
use serde::{Deserialize, Serialize};

/// The five benchmark graphs of the paper's Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Reddit post-to-post graph (Hamilton et al.). 233k nodes, 0.11B edges.
    Reddit,
    /// ogbn-products Amazon co-purchase network. 2.44M nodes, 123M edges.
    Products,
    /// MAG scientific-publication graph. 10.1M nodes, 0.3B edges.
    Mag,
    /// IGB-large academic graph collection. 100M nodes, 1.2B edges.
    IgbLarge,
    /// ogbn-papers100M citation network. 111M nodes, 1.61B edges.
    Papers100M,
}

impl Dataset {
    /// All datasets in the order the paper tabulates them.
    pub const ALL: [Dataset; 5] = [
        Dataset::Reddit,
        Dataset::Products,
        Dataset::Mag,
        Dataset::IgbLarge,
        Dataset::Papers100M,
    ];

    /// The four datasets most tables use (IGB appears only in Fig. 9 /
    /// Table 9 contexts).
    pub const CORE4: [Dataset; 4] = [
        Dataset::Reddit,
        Dataset::Products,
        Dataset::Mag,
        Dataset::Papers100M,
    ];

    /// Short name as the paper abbreviates it (RD/PR/MAG/IGB/PA).
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::Reddit => "RD",
            Dataset::Products => "PR",
            Dataset::Mag => "MAG",
            Dataset::IgbLarge => "IGB",
            Dataset::Papers100M => "PA",
        }
    }

    /// Full display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Reddit => "Reddit",
            Dataset::Products => "Products",
            Dataset::Mag => "MAG",
            Dataset::IgbLarge => "IGB-large",
            Dataset::Papers100M => "Papers100M",
        }
    }

    /// Published full-scale statistics (paper Table 6) plus the training
    /// fraction of the underlying benchmark.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Reddit => DatasetSpec {
                dataset: self,
                num_nodes: 232_965,
                num_edges: 110_000_000,
                feature_dim: 602,
                num_classes: 41,
                train_fraction: 0.66,
                scale: 1.0,
            },
            Dataset::Products => DatasetSpec {
                dataset: self,
                num_nodes: 2_440_000,
                num_edges: 123_000_000,
                feature_dim: 200,
                num_classes: 47,
                train_fraction: 0.08,
                scale: 1.0,
            },
            Dataset::Mag => DatasetSpec {
                dataset: self,
                num_nodes: 10_100_000,
                num_edges: 300_000_000,
                feature_dim: 100,
                num_classes: 8,
                train_fraction: 0.05,
                scale: 1.0,
            },
            Dataset::IgbLarge => DatasetSpec {
                dataset: self,
                num_nodes: 100_000_000,
                num_edges: 1_200_000_000,
                feature_dim: 1024,
                num_classes: 19,
                train_fraction: 0.02,
                scale: 1.0,
            },
            Dataset::Papers100M => DatasetSpec {
                dataset: self,
                num_nodes: 111_000_000,
                num_edges: 1_610_000_000,
                feature_dim: 128,
                num_classes: 172,
                train_fraction: 0.011,
                scale: 1.0,
            },
        }
    }

    /// R-MAT parameters reflecting the graph family.
    fn rmat_kind(self, num_nodes: u64, num_edges: u64) -> RmatConfig {
        match self {
            Dataset::Reddit | Dataset::Products => RmatConfig::social(num_nodes, num_edges),
            Dataset::Mag | Dataset::IgbLarge | Dataset::Papers100M => {
                RmatConfig::citation(num_nodes, num_edges)
            }
        }
    }

    /// Generates a scaled synthetic stand-in; see [`DatasetSpec::generate`].
    pub fn generate_scaled(self, scale: f64, seed: u64) -> DatasetBundle {
        self.spec().scaled(scale).generate(seed)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistics of a (possibly scaled) dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which benchmark this describes.
    pub dataset: Dataset,
    /// Node count at the current scale.
    pub num_nodes: u64,
    /// Directed edge count at the current scale.
    pub num_edges: u64,
    /// Feature dimensionality (never scaled — byte-per-node costs must match).
    pub feature_dim: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Fraction of nodes used as training seeds.
    pub train_fraction: f64,
    /// Scale factor relative to the published graph (1.0 = full scale).
    pub scale: f64,
}

impl DatasetSpec {
    /// Scales node and edge counts by `factor`, preserving average degree,
    /// feature width, and class count.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1], got {factor}"
        );
        self.num_nodes = ((self.num_nodes as f64 * factor) as u64).max(64);
        self.num_edges = ((self.num_edges as f64 * factor) as u64).max(256);
        self.scale *= factor;
        self
    }

    /// Average directed degree.
    pub fn average_degree(&self) -> f64 {
        self.num_edges as f64 / self.num_nodes as f64
    }

    /// Total feature bytes at this scale (FP32).
    pub fn feature_bytes(&self) -> u64 {
        self.num_nodes * self.feature_dim as u64 * 4
    }

    /// The batch size that corresponds to the paper's `batch` at this scale,
    /// clamped to a practical floor so tiny scaled graphs still form
    /// meaningful mini-batches.
    pub fn scaled_batch_size(&self, paper_batch: u64) -> u64 {
        (((paper_batch as f64) * self.scale.sqrt()) as u64).clamp(64, paper_batch)
    }

    /// Generates the synthetic stand-in graph, virtual features, and a
    /// train/val/test split. Deterministic in `(self, seed)`.
    pub fn generate(&self, seed: u64) -> DatasetBundle {
        // Symmetrisation roughly doubles edges, dedup removes a skew-dependent
        // fraction; draw slightly over half the target count.
        let draws = (self.num_edges as f64 * 0.55) as u64;
        let cfg = self.dataset.rmat_kind(self.num_nodes, draws);
        let graph = rmat::generate(&cfg, seed ^ (self.dataset as u64) << 32);
        let features = FeatureStore::virtual_store(self.num_nodes, self.feature_dim);
        let split = NodeSplit::stratified(self.num_nodes, self.train_fraction, 0.1, seed ^ 0xBEEF);
        DatasetBundle {
            spec: *self,
            graph,
            features,
            split,
        }
    }
}

/// A generated dataset: topology, features, and node split.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// The (scaled) statistics this bundle realises.
    pub spec: DatasetSpec,
    /// Synthetic topology.
    pub graph: Csr,
    /// Feature store (virtual by default).
    pub features: FeatureStore,
    /// Train/validation/test node split.
    pub split: NodeSplit,
}

impl DatasetBundle {
    /// Training seed nodes.
    pub fn train_nodes(&self) -> &[NodeId] {
        self.split.train()
    }

    /// Replaces the virtual feature store with materialized random features
    /// (used by examples that want to actually run the numeric kernels).
    pub fn materialize_features(&mut self, seed: u64) {
        let mut rng = crate::rng::DeterministicRng::seed(seed);
        let n = self.graph.num_nodes() as usize;
        let d = self.spec.feature_dim;
        let mut data = vec![0.0f32; n * d];
        for x in data.iter_mut() {
            *x = rng.normal_f32() * 0.1;
        }
        self.features = FeatureStore::materialized(data, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table6() {
        let rd = Dataset::Reddit.spec();
        assert_eq!(rd.num_nodes, 232_965);
        assert_eq!(rd.feature_dim, 602);
        assert_eq!(rd.num_classes, 41);
        let pa = Dataset::Papers100M.spec();
        assert_eq!(pa.num_nodes, 111_000_000);
        assert_eq!(pa.num_classes, 172);
        assert!((pa.average_degree() - 14.5).abs() < 0.1);
    }

    #[test]
    fn scaling_preserves_average_degree() {
        let spec = Dataset::Products.spec();
        let scaled = spec.scaled(1.0 / 128.0);
        assert!(
            (scaled.average_degree() - spec.average_degree()).abs() / spec.average_degree() < 0.01
        );
        assert_eq!(scaled.feature_dim, spec.feature_dim);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaling_rejects_zero() {
        let _ = Dataset::Reddit.spec().scaled(0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Products.generate_scaled(1.0 / 1024.0, 42);
        let b = Dataset::Products.generate_scaled(1.0 / 1024.0, 42);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.split.train(), b.split.train());
    }

    #[test]
    fn generated_graph_matches_spec_shape() {
        let bundle = Dataset::Mag.generate_scaled(1.0 / 2048.0, 7);
        let spec = &bundle.spec;
        assert_eq!(bundle.graph.num_nodes(), spec.num_nodes);
        // Generated degree within 2x of the target (dedup/symmetrise slack).
        let ratio = bundle.graph.average_degree() / spec.average_degree();
        assert!((0.4..=1.6).contains(&ratio), "degree ratio {ratio}");
        assert!(!bundle.train_nodes().is_empty());
    }

    #[test]
    fn scaled_batch_size_reasonable() {
        let spec = Dataset::Papers100M.spec().scaled(1.0 / 256.0);
        let b = spec.scaled_batch_size(8000);
        assert!((64..=8000).contains(&b), "batch {b}");
    }

    #[test]
    fn materialize_features_fills_rows() {
        let mut bundle = Dataset::Reddit.generate_scaled(1.0 / 4096.0, 3);
        bundle.materialize_features(1);
        assert!(bundle.features.is_materialized());
        assert_eq!(bundle.features.num_rows(), bundle.graph.num_nodes());
        let row = bundle.features.row(NodeId(0)).unwrap();
        assert!(row.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn short_names_match_paper() {
        let names: Vec<&str> = Dataset::ALL.iter().map(|d| d.short_name()).collect();
        assert_eq!(names, ["RD", "PR", "MAG", "IGB", "PA"]);
    }
}
