//! Synthetic graph generators.
//!
//! Real FastGL is evaluated on public benchmark graphs (Reddit, ogbn
//! products/papers, MAG, IGB). Those datasets are not available in this
//! environment, so we generate synthetic graphs whose *shape* — node count,
//! average degree, degree skew — matches the published statistics. The
//! behaviours FastGL exploits (inter-subgraph overlap, irregular access,
//! neighbour explosion) all derive from that shape, not from the concrete
//! node identities, so the substitution preserves what the experiments
//! measure.

pub mod community;
pub mod rmat;
