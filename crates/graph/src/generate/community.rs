//! Planted-partition generator with correlated features and labels.
//!
//! The convergence experiment of the paper (Fig. 16) trains real models to a
//! real loss, which requires a graph whose features and labels carry signal.
//! This generator plants `k` communities: nodes connect mostly within their
//! community, node features are noisy copies of a community centroid, and
//! the label is the community — the classic setting in which GCN-style
//! models provably learn.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::features::FeatureStore;
use crate::rng::DeterministicRng;

/// Parameters of the planted-partition generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityConfig {
    /// Number of nodes.
    pub num_nodes: u64,
    /// Number of planted communities (= classes).
    pub num_classes: usize,
    /// Average intra-community degree per node.
    pub intra_degree: f64,
    /// Average inter-community degree per node.
    pub inter_degree: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Standard deviation of feature noise around the community centroid.
    pub feature_noise: f32,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        Self {
            num_nodes: 10_000,
            num_classes: 8,
            intra_degree: 10.0,
            inter_degree: 2.0,
            feature_dim: 64,
            feature_noise: 1.0,
        }
    }
}

/// A generated community graph: topology, features, labels.
#[derive(Debug, Clone)]
pub struct CommunityGraph {
    /// Symmetric adjacency.
    pub graph: Csr,
    /// Materialized node features (`num_nodes x feature_dim`).
    pub features: FeatureStore,
    /// Per-node class label in `[0, num_classes)`.
    pub labels: Vec<u32>,
}

/// Generates a planted-partition graph. Deterministic in `(config, seed)`.
///
/// # Panics
///
/// Panics if `num_nodes == 0`, `num_classes == 0`, or `feature_dim == 0`.
pub fn generate(config: &CommunityConfig, seed: u64) -> CommunityGraph {
    assert!(config.num_nodes > 0, "num_nodes must be positive");
    assert!(config.num_classes > 0, "num_classes must be positive");
    assert!(config.feature_dim > 0, "feature_dim must be positive");
    let mut rng = DeterministicRng::seed(seed ^ 0x51DE_C0DE_F00D_BA5E);
    let n = config.num_nodes;
    let k = config.num_classes as u64;

    // Assign nodes to communities round-robin after a shuffle, so community
    // sizes are balanced but node IDs are not block-structured (block
    // structure would make mini-batch overlap unrealistically regular).
    let mut ids: Vec<u64> = (0..n).collect();
    rng.shuffle(&mut ids);
    let mut labels = vec![0u32; n as usize];
    for (i, &node) in ids.iter().enumerate() {
        labels[node as usize] = (i as u64 % k) as u32;
    }
    // Nodes of each community, for intra-community edge endpoints.
    let mut members: Vec<Vec<u64>> = vec![Vec::new(); config.num_classes];
    for (node, &label) in labels.iter().enumerate() {
        members[label as usize].push(node as u64);
    }

    let mut builder = GraphBuilder::new(n).symmetric(true);
    let intra_edges = (config.intra_degree * n as f64 / 2.0) as u64;
    let inter_edges = (config.inter_degree * n as f64 / 2.0) as u64;
    for _ in 0..intra_edges {
        let u = rng.below(n);
        let community = &members[labels[u as usize] as usize];
        let v = community[rng.below(community.len() as u64) as usize];
        builder.push_edge(u, v);
    }
    for _ in 0..inter_edges {
        builder.push_edge(rng.below(n), rng.below(n));
    }
    let graph = builder.build();

    // Centroids: random unit-ish vectors, one per class.
    let d = config.feature_dim;
    let mut centroids = vec![0.0f32; config.num_classes * d];
    for c in centroids.iter_mut() {
        *c = rng.normal_f32();
    }
    let mut feats = vec![0.0f32; n as usize * d];
    for node in 0..n as usize {
        let class = labels[node] as usize;
        for j in 0..d {
            feats[node * d + j] =
                centroids[class * d + j] + config.feature_noise * rng.normal_f32();
        }
    }
    CommunityGraph {
        graph,
        features: FeatureStore::materialized(feats, d),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::NodeId;

    fn small() -> CommunityConfig {
        CommunityConfig {
            num_nodes: 600,
            num_classes: 4,
            intra_degree: 8.0,
            inter_degree: 1.0,
            feature_dim: 16,
            feature_noise: 0.5,
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small(), 1);
        let b = generate(&small(), 1);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_cover_all_classes_evenly() {
        let g = generate(&small(), 2);
        let mut counts = [0usize; 4];
        for &l in &g.labels {
            counts[l as usize] += 1;
        }
        for &c in &counts {
            assert!((145..=155).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn intra_community_edges_dominate() {
        let g = generate(&small(), 3);
        let mut intra = 0u64;
        let mut inter = 0u64;
        for u in g.graph.nodes() {
            for &v in g.graph.neighbors(u) {
                if g.labels[u.index()] == g.labels[v as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > 3 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn features_correlate_with_labels() {
        let g = generate(&small(), 4);
        let feats = g.features.as_slice().expect("materialized");
        let d = g.features.dim();
        // Mean feature of class 0 should be closer to another class-0 node
        // than to a class-1 node's feature, on average.
        let class_mean = |class: u32| -> Vec<f32> {
            let mut acc = vec![0.0f32; d];
            let mut count = 0;
            for (node, &l) in g.labels.iter().enumerate() {
                if l == class {
                    for j in 0..d {
                        acc[j] += feats[node * d + j];
                    }
                    count += 1;
                }
            }
            acc.iter_mut().for_each(|x| *x /= count as f32);
            acc
        };
        let m0 = class_mean(0);
        let m1 = class_mean(1);
        let dist: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "centroid distance {dist}");
    }

    #[test]
    fn graph_is_symmetric() {
        let g = generate(&small(), 5);
        for u in g.graph.nodes() {
            for &v in g.graph.neighbors(u) {
                assert!(g.graph.neighbors(NodeId(v)).contains(&u.0));
            }
        }
    }
}
