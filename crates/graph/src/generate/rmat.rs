//! R-MAT power-law graph generator (Chakrabarti, Zhan & Faloutsos, 2004).
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)` and drops each edge into a quadrant chosen
//! at random, yielding graphs with heavy-tailed degree distributions like
//! the social/citation/co-purchase networks used in the paper.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::rng::DeterministicRng;

/// Parameters of the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// Number of nodes; rounded up to a power of two internally for the
    /// recursion, then draws outside the range wrap around.
    pub num_nodes: u64,
    /// Number of directed edges to draw (before dedup / symmetrisation).
    pub num_edges: u64,
    /// Probability of the top-left quadrant. Larger `a` means heavier skew.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Whether to add the reverse of every edge (undirected benchmarks).
    pub symmetric: bool,
    /// Per-level probability perturbation, which avoids the unrealistic
    /// perfectly self-similar structure of vanilla R-MAT.
    pub noise: f64,
}

impl RmatConfig {
    /// A reasonable social-network-like default: `(0.57, 0.19, 0.19)`.
    pub fn social(num_nodes: u64, num_edges: u64) -> Self {
        Self {
            num_nodes,
            num_edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            symmetric: true,
            noise: 0.1,
        }
    }

    /// A citation-network-like config with slightly milder skew.
    pub fn citation(num_nodes: u64, num_edges: u64) -> Self {
        Self {
            a: 0.50,
            b: 0.22,
            c: 0.22,
            ..Self::social(num_nodes, num_edges)
        }
    }

    /// Implied probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that the probabilities form a distribution.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when probabilities are negative or
    /// sum above one, or when the graph is empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes == 0 {
            return Err("num_nodes must be positive".into());
        }
        if self.a < 0.0 || self.b < 0.0 || self.c < 0.0 || self.d() < 0.0 {
            return Err(format!(
                "quadrant probabilities must be non-negative (a={}, b={}, c={}, d={})",
                self.a,
                self.b,
                self.c,
                self.d()
            ));
        }
        Ok(())
    }
}

/// Generates an R-MAT graph.
///
/// Deterministic in `(config, seed)`.
///
/// # Panics
///
/// Panics if `config.validate()` fails; validate first when handling
/// untrusted configuration.
pub fn generate(config: &RmatConfig, seed: u64) -> Csr {
    config.validate().expect("invalid R-MAT configuration");
    let mut rng = DeterministicRng::seed(seed ^ 0x9E02_17F6_D23B_55A1);
    let levels = 64 - (config.num_nodes.max(2) - 1).leading_zeros();
    let mut builder = GraphBuilder::new(config.num_nodes).symmetric(config.symmetric);
    for _ in 0..config.num_edges {
        let (u, v) = sample_edge(config, levels, &mut rng);
        builder.push_edge(u, v);
    }
    builder.build()
}

fn sample_edge(config: &RmatConfig, levels: u32, rng: &mut DeterministicRng) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    // Perturb quadrant probabilities once per edge; this keeps the generator
    // fast while still breaking vanilla R-MAT's perfect self-similarity.
    let jitter = |p: f64, r: f64| (p * (1.0 - config.noise + 2.0 * config.noise * r)).max(0.0);
    let a = jitter(config.a, rng.unit_f64());
    let b = jitter(config.b, rng.unit_f64());
    let c = jitter(config.c, rng.unit_f64());
    let d = jitter(config.d(), rng.unit_f64());
    let total = a + b + c + d;
    for _ in 0..levels {
        let x = rng.unit_f64() * total;
        u <<= 1;
        v <<= 1;
        if x < a {
            // top-left: no bits set
        } else if x < a + b {
            v |= 1;
        } else if x < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u % config.num_nodes, v % config.num_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::NodeId;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig::social(1000, 5000);
        let g1 = generate(&cfg, 11);
        let g2 = generate(&cfg, 11);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seed_different_graph() {
        let cfg = RmatConfig::social(1000, 5000);
        assert_ne!(generate(&cfg, 1), generate(&cfg, 2));
    }

    #[test]
    fn node_and_edge_counts_reasonable() {
        let cfg = RmatConfig::social(2048, 10_000);
        let g = generate(&cfg, 3);
        assert_eq!(g.num_nodes(), 2048);
        // Symmetrised and deduped: between num_edges and 2 * num_edges.
        assert!(g.num_edges() <= 20_000);
        assert!(g.num_edges() >= 5_000, "edges {}", g.num_edges());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig::social(4096, 40_000);
        let g = generate(&cfg, 5);
        let avg = g.average_degree();
        let max = g.max_degree() as f64;
        // Power-law graphs have max degree far above the mean.
        assert!(max > 8.0 * avg, "max {max} avg {avg}");
    }

    #[test]
    fn non_power_of_two_node_count_in_range() {
        let cfg = RmatConfig::social(1000, 3000);
        let g = generate(&cfg, 7);
        assert_eq!(g.num_nodes(), 1000);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                assert!(v < 1000);
            }
        }
    }

    #[test]
    fn validate_rejects_bad_probs() {
        let mut cfg = RmatConfig::social(10, 10);
        cfg.a = 0.9;
        cfg.b = 0.9;
        assert!(cfg.validate().is_err());
        assert!(RmatConfig::social(0, 5).validate().is_err());
    }

    #[test]
    fn symmetric_graphs_have_reverse_edges() {
        let cfg = RmatConfig::social(512, 2000);
        let g = generate(&cfg, 9);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                assert!(
                    g.neighbors(NodeId(v)).contains(&u.0),
                    "missing reverse of ({u}, n{v})"
                );
            }
        }
    }
}
