//! Property-based tests of the GPU simulator's invariants.

use fastgl::gpusim::kernel::gemm_time;
use fastgl::gpusim::transfer::ring_allreduce_time;
use fastgl::gpusim::{
    Cache, CacheConfig, CostParams, DeviceSpec, HostSpec, KernelProfile, PcieEngine, SimTime,
};
use proptest::prelude::*;

proptest! {
    /// Cache hit count never exceeds access count; hit rate stays in [0,1].
    #[test]
    fn cache_hits_bounded(addrs in prop::collection::vec(0u64..1_000_000, 1..2_000)) {
        let mut cache = Cache::new(CacheConfig::with_capacity(16 * 1024));
        for &a in &addrs {
            cache.access(a);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.hits <= s.accesses());
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
    }

    /// A strictly larger cache never hits less on the same trace.
    #[test]
    fn bigger_cache_never_worse(addrs in prop::collection::vec(0u64..100_000, 1..2_000)) {
        // Fully-associative equivalents (single set) make inclusion hold.
        let small_lines = 16;
        let big_lines = 64;
        let mut small = Cache::new(CacheConfig {
            capacity_bytes: 128 * small_lines,
            line_bytes: 128,
            ways: small_lines as usize,
        });
        let mut big = Cache::new(CacheConfig {
            capacity_bytes: 128 * big_lines,
            line_bytes: 128,
            ways: big_lines as usize,
        });
        for &a in &addrs {
            small.access(a);
            big.access(a);
        }
        prop_assert!(big.stats().hits >= small.stats().hits);
    }

    /// PCIe copy time is monotone in bytes and at least the fixed latency.
    #[test]
    fn pcie_time_monotone(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let engine = PcieEngine::new(HostSpec::pcie4());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = engine.copy_time(lo);
        let t_hi = engine.copy_time(hi);
        prop_assert!(t_lo <= t_hi);
        prop_assert!(t_lo >= SimTime::from_nanos(HostSpec::pcie4().pcie_latency_ns));
    }

    /// Kernel cost is monotone in every byte counter.
    #[test]
    fn kernel_cost_monotone(
        flops in 0u64..1_000_000_000,
        global in 0u64..1_000_000_000,
        extra in 1u64..1_000_000_000,
    ) {
        let dev = DeviceSpec::rtx3090();
        let params = CostParams::default();
        let base = KernelProfile { flops, bytes_global: global, ..Default::default() };
        let more = KernelProfile { flops, bytes_global: global + extra, ..Default::default() };
        prop_assert!(more.cost(&dev, &params).time() >= base.cost(&dev, &params).time());
    }

    /// Serving bytes from shared memory is never slower than from global.
    #[test]
    fn shared_never_slower_than_global(bytes in 1u64..2_000_000_000) {
        let dev = DeviceSpec::rtx3090();
        let params = CostParams::default();
        let from_shared = KernelProfile { bytes_shared: bytes, ..Default::default() };
        let from_global = KernelProfile { bytes_global: bytes, ..Default::default() };
        prop_assert!(
            from_shared.cost(&dev, &params).time() <= from_global.cost(&dev, &params).time()
        );
    }

    /// GEMM time grows with each dimension.
    #[test]
    fn gemm_time_monotone(m in 1u64..10_000, k in 1u64..512, n in 1u64..512) {
        let dev = DeviceSpec::rtx3090();
        let params = CostParams::default();
        let t = gemm_time(&dev, &params, m, k, n);
        let t2 = gemm_time(&dev, &params, m * 2, k, n);
        prop_assert!(t2 >= t);
    }

    /// Ring all-reduce time is monotone in payload and zero for one worker.
    #[test]
    fn allreduce_properties(bytes in 0u64..1_000_000_000, n in 2usize..16) {
        let host = HostSpec::pcie4();
        prop_assert_eq!(ring_allreduce_time(&host, bytes, 1), SimTime::ZERO);
        let t = ring_allreduce_time(&host, bytes, n);
        let t2 = ring_allreduce_time(&host, bytes * 2, n);
        prop_assert!(t2 >= t);
    }

    /// SimTime arithmetic respects ordering and identity.
    #[test]
    fn simtime_algebra(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let ta = SimTime::from_nanos(a);
        let tb = SimTime::from_nanos(b);
        prop_assert_eq!((ta + tb).as_nanos(), a + b);
        prop_assert_eq!(ta + SimTime::ZERO, ta);
        prop_assert_eq!(ta.max(tb).as_nanos(), a.max(b));
        prop_assert_eq!(ta.saturating_sub(tb).as_nanos(), a.saturating_sub(b));
    }
}
