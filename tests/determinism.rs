//! Determinism guarantees: every stochastic component is a pure function
//! of its seed, end to end — the property the whole simulation methodology
//! rests on (DESIGN.md §6).

use fastgl::core::trainer::{train, TrainerConfig};
use fastgl::graph::generate::community::{self, CommunityConfig};
use fastgl::graph::generate::rmat::{self, RmatConfig};
use fastgl::graph::{Dataset, DeterministicRng, NodeId};
use fastgl::sample::{FusedIdMap, LayerWiseSampler, NeighborSampler, RandomWalkSampler};

#[test]
fn generators_are_pure_functions_of_their_seed() {
    let cfg = RmatConfig::social(2_000, 16_000);
    assert_eq!(rmat::generate(&cfg, 7), rmat::generate(&cfg, 7));
    assert_ne!(rmat::generate(&cfg, 7), rmat::generate(&cfg, 8));

    let ccfg = CommunityConfig::default();
    let a = community::generate(&ccfg, 3);
    let b = community::generate(&ccfg, 3);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.features, b.features);
}

#[test]
fn dataset_bundles_reproduce() {
    let a = Dataset::IgbLarge.generate_scaled(1.0 / 8192.0, 99);
    let b = Dataset::IgbLarge.generate_scaled(1.0 / 8192.0, 99);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.split.train(), b.split.train());
    assert_eq!(a.spec, b.spec);
}

#[test]
fn every_sampler_reproduces_from_its_rng() {
    let g = rmat::generate(&RmatConfig::social(1_500, 12_000), 5);
    let seeds: Vec<NodeId> = (0..32).map(|i| NodeId(i * 7 % 1_500)).collect();
    let map = FusedIdMap::new();

    let neighbor = NeighborSampler::new(vec![3, 4]);
    let walk = RandomWalkSampler::paper_default();
    let ladies = LayerWiseSampler::new(vec![64, 128]);

    let run = |f: &dyn Fn(&mut DeterministicRng) -> u64| {
        let mut r1 = DeterministicRng::seed(11);
        let mut r2 = DeterministicRng::seed(11);
        assert_eq!(f(&mut r1), f(&mut r2));
    };
    run(&|rng| neighbor.sample(&g, &seeds, &map, rng).0.num_nodes());
    run(&|rng| walk.sample(&g, &seeds, &map, rng).0.num_edges());
    run(&|rng| ladies.sample(&g, &seeds, &map, rng).0.num_nodes());
}

#[test]
fn real_training_reproduces_bit_for_bit() {
    let d = community::generate(
        &CommunityConfig {
            num_nodes: 500,
            num_classes: 3,
            intra_degree: 8.0,
            inter_degree: 1.0,
            feature_dim: 12,
            feature_noise: 0.6,
        },
        13,
    );
    let nodes: Vec<NodeId> = (0..300).map(NodeId).collect();
    let cfg = TrainerConfig {
        fanouts: vec![3, 3],
        batch_size: 64,
        epochs: 2,
        ..Default::default()
    };
    let a = train(&d.graph, &d.features, &d.labels, &nodes, &cfg);
    let b = train(&d.graph, &d.features, &d.labels, &nodes, &cfg);
    assert_eq!(a.iteration_losses, b.iteration_losses);
    assert_eq!(a.final_accuracy, b.final_accuracy);
}

#[test]
fn cheap_experiments_reproduce_their_reports() {
    let scale = fastgl_bench::BenchScale::quick();
    for (id, runner) in fastgl_bench::experiments::all() {
        // Only the cheap, pure-table experiments; the full suite is
        // exercised by `all_experiments` (still deterministic, just slow).
        if !matches!(
            id,
            "tab03_memory_levels" | "tab04_match_degree" | "abl02_hash_load_factor"
        ) {
            continue;
        }
        let a = runner(&scale);
        let b = runner(&scale);
        assert_eq!(a, b, "{id} is not deterministic");
    }
}

#[test]
fn derived_rng_streams_are_stable_constants() {
    // Freeze a few values of the RNG stream: any change to the generator
    // silently invalidates every recorded experiment, so pin it.
    let mut rng = DeterministicRng::seed(0);
    assert_eq!(rng.next(), 11091344671253066420);
    let mut derived = DeterministicRng::seed(42).derive(7);
    let first = derived.next();
    let mut again = DeterministicRng::seed(42).derive(7);
    assert_eq!(first, again.next());
}
