//! Integration tests of the library extensions beyond the paper's core:
//! the SAGE model, the layer-wise sampler, and the hotness cache policy.

use fastgl::baselines::SystemKind;
use fastgl::core::hotness::{rank_nodes, CacheRankPolicy, HotnessCounter};
use fastgl::core::sampler::SamplerEngine;
use fastgl::core::{FastGl, FastGlConfig, TrainingSystem};
use fastgl::gnn::ModelKind;
use fastgl::graph::{Dataset, DeterministicRng};

fn config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(64)
        .with_fanouts(vec![3, 5])
}

#[test]
fn sage_runs_through_every_system() {
    let data = Dataset::Products.generate_scaled(1.0 / 2048.0, 41);
    for kind in [SystemKind::Dgl, SystemKind::FastGl] {
        let mut sys = kind.build(config().with_model(ModelKind::Sage));
        let s = sys.run_epoch(&data, 0);
        assert!(s.iterations > 0, "{kind}");
        assert!(s.breakdown.compute.as_nanos() > 0, "{kind}");
    }
}

#[test]
fn sage_update_costs_more_than_gcn() {
    // SAGE's self + neighbour GEMMs double the update work.
    let data = Dataset::Products.generate_scaled(1.0 / 1024.0, 43);
    let time = |model: ModelKind| {
        FastGl::new(config().with_model(model))
            .run_epoch(&data, 0)
            .breakdown
            .compute
    };
    assert!(time(ModelKind::Sage) > time(ModelKind::Gcn));
}

#[test]
fn layer_wise_pipeline_tames_neighbour_explosion() {
    let data = Dataset::Mag.generate_scaled(1.0 / 1024.0, 45);
    let mut fanout = FastGl::new(config());
    let mut ladies = FastGl::new(config().with_layer_wise());
    let s_fanout = fanout.run_epoch(&data, 0);
    let s_ladies = ladies.run_epoch(&data, 0);
    assert!(s_ladies.iterations > 0);
    // Layer budgets bound the *node* frontier (LADIES keeps all edges into
    // the drawn layer, so edge counts can exceed fanout sampling's): the
    // total feature rows each pipeline needs per epoch is the comparison.
    let rows = |s: &fastgl::core::EpochStats| s.rows_loaded + s.rows_reused + s.rows_cached;
    assert!(
        rows(&s_ladies) < rows(&s_fanout),
        "layer-wise {} rows vs fanout {} rows",
        rows(&s_ladies),
        rows(&s_fanout)
    );
}

#[test]
fn layer_wise_works_with_match_reorder_end_to_end() {
    let data = Dataset::Products.generate_scaled(1.0 / 512.0, 47);
    let base = config().with_layer_wise().with_cache_ratio(0.0);
    let mut without = {
        let mut c = base.clone();
        c.enable_match = false;
        c.enable_reorder = false;
        FastGl::new(c)
    };
    let mut with_mr = FastGl::new(base);
    let s_plain = without.run_epochs(&data, 2);
    let s_mr = with_mr.run_epochs(&data, 2);
    assert!(
        s_mr.breakdown.io < s_plain.breakdown.io,
        "Match-Reorder must help layer-wise sampling too: {} vs {}",
        s_mr.breakdown.io,
        s_plain.breakdown.io
    );
    assert!(s_mr.rows_reused > 0);
}

#[test]
fn hotness_ranking_beats_degree_when_seeds_are_skewed() {
    // Build hotness from probe batches drawn from a narrow seed band; a
    // cache ranked by that hotness must hit more than a degree cache for
    // traffic from the same band.
    let data = Dataset::Products.generate_scaled(1.0 / 1024.0, 49);
    let cfg = config();
    let engine = SamplerEngine::new(&cfg);
    let band: Vec<_> = data.train_nodes().iter().take(48).copied().collect();
    let mut counter = HotnessCounter::new(data.graph.num_nodes());
    let mut rng = DeterministicRng::seed(3);
    for _ in 0..3 {
        let (sg, _) = engine.sample_batch(&data.graph, &band, &mut rng);
        counter.record(&sg);
    }
    let hot_rank = rank_nodes(
        CacheRankPolicy::PreSampledHotness,
        &data.graph,
        Some(&counter),
    );
    let deg_rank = rank_nodes(CacheRankPolicy::Degree, &data.graph, None);

    let cache_rows = data.graph.num_nodes() / 10;
    let hot_cache = fastgl::core::FeatureCache::from_ranking(&hot_rank, cache_rows, 4);
    let deg_cache = fastgl::core::FeatureCache::from_ranking(&deg_rank, cache_rows, 4);

    // Fresh traffic from the same band.
    let (sg, _) = engine.sample_batch(&data.graph, &band, &mut rng);
    let load = sg.sorted_global_ids();
    let (hot_hits, _) = hot_cache.partition(load);
    let (deg_hits, _) = deg_cache.partition(load);
    assert!(
        hot_hits > deg_hits,
        "hotness cache {hot_hits} hits vs degree cache {deg_hits}"
    );
}

#[test]
fn gnnlab_uses_presampled_hotness_and_still_beats_dgl_io() {
    let data = Dataset::Reddit.generate_scaled(1.0 / 512.0, 51);
    let mut lab = SystemKind::GnnLab.build(config());
    let mut dgl = SystemKind::Dgl.build(config());
    let s_lab = lab.run_epoch(&data, 0);
    let s_dgl = dgl.run_epoch(&data, 0);
    assert!(s_lab.rows_cached > 0);
    assert!(s_lab.breakdown.io <= s_dgl.breakdown.io);
}
