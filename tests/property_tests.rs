//! Property-based tests (proptest) of the workspace's core invariants.

use fastgl::core::match_reorder::{greedy_reorder, match_load_set};
use fastgl::graph::generate::rmat::{self, RmatConfig};
use fastgl::graph::{DeterministicRng, GraphBuilder, NodeId};
use fastgl::sample::id_map::{baseline::BaselineIdMap, fused::FusedIdMap};
use fastgl::sample::overlap::{intersection_size, match_degree, match_degree_matrix};
use fastgl::sample::{IdMap, NeighborSampler};
use proptest::prelude::*;
use std::collections::HashSet;

fn sorted_unique(ids: Vec<u64>) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    /// Both ID maps produce a bijection onto 0..unique for any multiset.
    #[test]
    fn id_maps_are_bijections(ids in prop::collection::vec(0u64..10_000, 0..2_000)) {
        for map in [&BaselineIdMap::new() as &dyn IdMap, &FusedIdMap::new()] {
            let out = map.map(&ids);
            prop_assert!(out.verify(&ids).is_ok());
            let expected_unique: HashSet<u64> = ids.iter().copied().collect();
            prop_assert_eq!(out.unique.len(), expected_unique.len());
            prop_assert_eq!(out.stats.total_ids, ids.len() as u64);
        }
    }

    /// Baseline and fused maps agree exactly (same first-occurrence order).
    #[test]
    fn id_map_strategies_agree(ids in prop::collection::vec(0u64..500, 0..800)) {
        let a = BaselineIdMap::new().map(&ids);
        let b = FusedIdMap::new().map(&ids);
        prop_assert_eq!(a.unique, b.unique);
        prop_assert_eq!(a.locals, b.locals);
    }

    /// The concurrent fused map is a valid bijection under real threads.
    #[test]
    fn parallel_fused_map_valid(ids in prop::collection::vec(0u64..2_000, 1..3_000)) {
        let out = FusedIdMap { threads: 4, ..FusedIdMap::new() }.map_parallel(&ids);
        prop_assert!(out.verify(&ids).is_ok());
    }

    /// Match partitions the incoming set: load ∪ overlap = incoming,
    /// load ∩ resident = ∅, and counts add up.
    #[test]
    fn match_is_a_partition(
        incoming in prop::collection::vec(0u64..5_000, 0..800),
        resident in prop::collection::vec(0u64..5_000, 0..800),
    ) {
        let incoming = sorted_unique(incoming);
        let resident = sorted_unique(resident);
        let m = match_load_set(&incoming, &resident);
        prop_assert_eq!(m.load.len() as u64 + m.reused, incoming.len() as u64);
        let resident_set: HashSet<NodeId> = resident.iter().copied().collect();
        for n in &m.load {
            prop_assert!(!resident_set.contains(n));
        }
        prop_assert_eq!(m.reused as usize, intersection_size(&incoming, &resident));
    }

    /// Match degree is symmetric and bounded in [0, 1].
    #[test]
    fn match_degree_bounds(
        a in prop::collection::vec(0u64..2_000, 0..500),
        b in prop::collection::vec(0u64..2_000, 0..500),
    ) {
        let a = sorted_unique(a);
        let b = sorted_unique(b);
        let d = match_degree(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, match_degree(&b, &a));
    }

    /// Greedy reorder returns a permutation starting at 0 whose
    /// consecutive match sum is at least the identity order's.
    #[test]
    fn reorder_is_valid_permutation(seed in 0u64..1_000, n in 2usize..12) {
        let mut rng = DeterministicRng::seed(seed);
        let sets: Vec<Vec<NodeId>> = (0..n)
            .map(|_| {
                let ids: Vec<u64> = (0..50).map(|_| rng.below(200)).collect();
                sorted_unique(ids)
            })
            .collect();
        let m = match_degree_matrix(&sets);
        let order = greedy_reorder(&m);
        prop_assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// The neighbour sampler produces structurally valid subgraphs on
    /// arbitrary R-MAT graphs with arbitrary fanouts.
    #[test]
    fn sampler_output_always_valid(
        seed in 0u64..500,
        nodes in 50u64..500,
        fanout1 in 1usize..6,
        fanout2 in 1usize..6,
        batch in 1usize..32,
    ) {
        let g = rmat::generate(&RmatConfig::social(nodes, nodes * 8), seed);
        let mut rng = DeterministicRng::seed(seed ^ 1);
        let seeds: Vec<NodeId> = (0..batch as u64).map(|i| NodeId(i % nodes)).collect();
        // Deduplicate seeds: mini-batch plans never repeat a seed.
        let seeds = sorted_unique(seeds.into_iter().map(|n| n.0).collect());
        let sampler = NeighborSampler::new(vec![fanout1, fanout2]);
        let (sg, stats) = sampler.sample(&g, &seeds, &FusedIdMap::new(), &mut rng);
        prop_assert!(sg.validate().is_ok());
        prop_assert_eq!(sg.blocks.len(), 2);
        prop_assert!(sg.num_nodes() >= seeds.len() as u64);
        // Every sampled edge's endpoints are real graph neighbours.
        prop_assert!(stats.edges_sampled <= (sg.num_nodes() * (fanout1 + fanout2) as u64 * 2));
    }

    /// CSR round-trips arbitrary edge lists through the builder.
    #[test]
    fn builder_round_trips_edges(
        edges in prop::collection::vec((0u64..100, 0u64..100), 0..500),
    ) {
        let g = GraphBuilder::new(100)
            .dedup(true)
            .extend_edges(edges.iter().copied())
            .build();
        let expected: HashSet<(u64, u64)> = edges
            .iter()
            .copied()
            .filter(|(u, v)| u != v)
            .collect();
        let got: HashSet<(u64, u64)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Sampled neighbours are always true neighbours in the raw graph.
    #[test]
    fn sampled_edges_exist_in_graph(seed in 0u64..200) {
        let g = rmat::generate(&RmatConfig::social(300, 2_400), seed);
        let mut rng = DeterministicRng::seed(seed);
        let seeds: Vec<NodeId> = (0..8u64).map(NodeId).collect();
        let (sg, _) = NeighborSampler::new(vec![3])
            .sample(&g, &seeds, &FusedIdMap::new(), &mut rng);
        let block = &sg.blocks[0];
        for (i, &dst_local) in block.dst_locals.iter().enumerate() {
            let dst_global = sg.nodes[dst_local as usize];
            for &src_local in block.sources_of(i) {
                if src_local == dst_local {
                    continue; // self-loop added by the sampler
                }
                let src_global = sg.nodes[src_local as usize];
                prop_assert!(
                    g.neighbors(dst_global).contains(&src_global.0),
                    "sampled edge ({dst_global}, {src_global}) not in graph"
                );
            }
        }
    }
}
