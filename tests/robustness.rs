//! Edge-case and robustness tests: degenerate graphs, tiny batches, and
//! configuration extremes must degrade gracefully, never panic.

use fastgl::baselines::SystemKind;
use fastgl::core::{FastGl, FastGlConfig, TrainingSystem};
use fastgl::graph::datasets::{DatasetBundle, DatasetSpec};
use fastgl::graph::DeterministicRng;
use fastgl::graph::{Dataset, FeatureStore, GraphBuilder, NodeSplit};
use fastgl::sample::{FusedIdMap, NeighborSampler};

/// Wraps an arbitrary CSR in a runnable dataset bundle.
fn bundle_from_graph(graph: fastgl::graph::Csr, train_frac: f64) -> DatasetBundle {
    let n = graph.num_nodes();
    DatasetBundle {
        spec: DatasetSpec {
            dataset: Dataset::Products,
            num_nodes: n,
            num_edges: graph.num_edges(),
            feature_dim: 16,
            num_classes: 4,
            train_fraction: train_frac,
            scale: 1.0 / 64.0,
        },
        features: FeatureStore::virtual_store(n, 16),
        split: NodeSplit::stratified(n, train_frac, 0.0, 1),
        graph,
    }
}

fn tiny_config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(4)
        .with_fanouts(vec![2, 2])
        .with_gpus(1)
}

#[test]
fn graph_of_isolated_nodes_trains() {
    let data = bundle_from_graph(fastgl::graph::Csr::empty(64), 0.5);
    let mut sys = FastGl::new(tiny_config());
    let s = sys.run_epoch(&data, 0);
    assert!(s.iterations > 0);
    // Only self-loops: every subgraph is exactly its seeds.
    assert_eq!(s.edges_sampled, 0);
}

#[test]
fn single_edge_graph_runs_every_system() {
    let g = GraphBuilder::new(8).symmetric(true).add_edge(0, 1).build();
    let data = bundle_from_graph(g, 0.5);
    for kind in [SystemKind::Dgl, SystemKind::FastGl, SystemKind::PaGraph] {
        let s = kind.build(tiny_config()).run_epoch(&data, 0);
        assert!(s.iterations > 0, "{kind}");
    }
}

#[test]
fn batch_larger_than_train_set_is_one_batch() {
    let data = Dataset::Products.generate_scaled(1.0 / 4096.0, 61);
    let huge_batch = tiny_config().with_batch_size(1_000_000);
    let mut sys = FastGl::new(huge_batch);
    let s = sys.run_epoch(&data, 0);
    assert_eq!(s.iterations, 1);
}

#[test]
fn star_graph_hub_dominates_every_subgraph() {
    // A hub connected to everything: the hub must appear in every sampled
    // subgraph and Match reuses it every iteration.
    let mut b = GraphBuilder::new(256).symmetric(true);
    for i in 1..256 {
        b.push_edge(0, i);
    }
    let data = bundle_from_graph(b.build(), 0.5);
    let mut cfg = tiny_config().with_cache_ratio(0.0);
    cfg.enable_reorder = false;
    let mut sys = FastGl::new(cfg);
    let s = sys.run_epoch(&data, 0);
    assert!(s.iterations > 1);
    assert!(s.rows_reused > 0, "the hub must be reused across batches");
}

#[test]
fn deep_sampling_on_tiny_graph_saturates_without_panic() {
    let data = Dataset::Reddit.generate_scaled(1.0 / 8192.0, 63);
    let cfg = tiny_config().with_fanouts(vec![8, 8, 8, 8, 8]);
    let mut sys = FastGl::new(cfg);
    let s = sys.run_epoch(&data, 0);
    assert!(s.iterations > 0);
}

#[test]
fn sampler_accepts_duplicate_free_singleton_seed() {
    let g = GraphBuilder::new(4).symmetric(true).add_edge(0, 1).build();
    let mut rng = DeterministicRng::seed(1);
    let (sg, _) = NeighborSampler::new(vec![3]).sample(
        &g,
        &[fastgl::graph::NodeId(2)],
        &FusedIdMap::new(),
        &mut rng,
    );
    sg.validate().unwrap();
    assert_eq!(sg.seed_locals.len(), 1);
}

#[test]
fn eight_gpus_on_a_tiny_train_set_leave_empty_shards_out() {
    // 10 train nodes across 8 GPUs: shard 0 has 2 seeds; the epoch must
    // still account at least one iteration.
    let g = GraphBuilder::new(64)
        .symmetric(true)
        .extend_edges((0..63).map(|i| (i, i + 1)))
        .build();
    let data = bundle_from_graph(g, 10.0 / 64.0);
    let mut sys = FastGl::new(tiny_config().with_gpus(8));
    let s = sys.run_epoch(&data, 0);
    assert!(s.iterations >= 1);
}

#[test]
fn zero_feature_width_is_rejected_upstream() {
    // FeatureStore refuses dim 0 at construction, so no pipeline can be
    // built over it — the invariant the simulator's byte math relies on.
    let result = std::panic::catch_unwind(|| FeatureStore::materialized(vec![], 0));
    assert!(result.is_err());
}
