//! End-to-end integration across crates: every training system runs on
//! every (small) dataset, accounting invariants hold, and the paper's
//! headline orderings come out of the full pipeline.

use fastgl::baselines::SystemKind;
use fastgl::core::FastGlConfig;
use fastgl::gnn::ModelKind;
use fastgl::graph::Dataset;

fn config() -> FastGlConfig {
    FastGlConfig::default()
        .with_batch_size(64)
        .with_fanouts(vec![3, 5])
}

const ALL_SYSTEMS: [SystemKind; 6] = [
    SystemKind::Pyg,
    SystemKind::Dgl,
    SystemKind::GnnAdvisor,
    SystemKind::GnnLab,
    SystemKind::PaGraph,
    SystemKind::FastGl,
];

#[test]
fn every_system_on_every_dataset() {
    for dataset in Dataset::ALL {
        let data = dataset.generate_scaled(1.0 / 4096.0, 3);
        if data.train_nodes().is_empty() {
            continue;
        }
        for kind in ALL_SYSTEMS {
            let mut sys = kind.build(config());
            let stats = sys.run_epoch(&data, 0);
            assert!(stats.iterations > 0, "{kind} on {dataset}: no iterations");
            // Accounting invariant: total is the sum of phases.
            assert_eq!(
                stats.total(),
                stats.breakdown.sample + stats.breakdown.io + stats.breakdown.compute,
                "{kind} on {dataset}: phases do not sum"
            );
            // Every needed feature row is loaded, reused, or cached.
            assert!(
                stats.rows_loaded + stats.rows_reused + stats.rows_cached > 0,
                "{kind} on {dataset}: no feature rows accounted"
            );
        }
    }
}

#[test]
fn headline_ordering_holds_end_to_end() {
    let data = Dataset::Products.generate_scaled(1.0 / 512.0, 5);
    let cfg = FastGlConfig::default()
        .with_batch_size(256)
        .with_fanouts(vec![5, 10, 15]);
    let time = |kind: SystemKind| {
        kind.build(cfg.clone())
            .run_epochs(&data, 2)
            .total()
            .as_secs_f64()
    };
    let pyg = time(SystemKind::Pyg);
    let dgl = time(SystemKind::Dgl);
    let fastgl = time(SystemKind::FastGl);
    assert!(
        pyg > dgl && dgl > fastgl,
        "ordering violated: PyG {pyg:.6} DGL {dgl:.6} FastGL {fastgl:.6}"
    );
    let speedup_dgl = dgl / fastgl;
    assert!(
        (1.2..=20.0).contains(&speedup_dgl),
        "FastGL/DGL speedup {speedup_dgl} outside plausible band"
    );
}

#[test]
fn all_three_models_run_through_every_phase() {
    let data = Dataset::Reddit.generate_scaled(1.0 / 2048.0, 7);
    for model in ModelKind::ALL {
        let mut sys = SystemKind::FastGl.build(config().with_model(model));
        let s = sys.run_epoch(&data, 0);
        assert!(s.breakdown.sample.as_nanos() > 0, "{model}: no sample time");
        assert!(
            s.breakdown.compute.as_nanos() > 0,
            "{model}: no compute time"
        );
    }
}

#[test]
fn epoch_stats_reproduce_across_fresh_systems() {
    let data = Dataset::Mag.generate_scaled(1.0 / 4096.0, 9);
    let a = SystemKind::FastGl.build(config()).run_epoch(&data, 2);
    let b = SystemKind::FastGl.build(config()).run_epoch(&data, 2);
    assert_eq!(a, b, "simulation must be bit-for-bit deterministic");
}

#[test]
fn different_epochs_shuffle_batches() {
    let data = Dataset::Products.generate_scaled(1.0 / 2048.0, 11);
    let mut sys = SystemKind::FastGl.build(config());
    let e0 = sys.run_epoch(&data, 0);
    let e1 = sys.run_epoch(&data, 1);
    assert_eq!(e0.iterations, e1.iterations);
    assert_ne!(
        e0.breakdown, e1.breakdown,
        "different epoch seeds must sample different subgraphs"
    );
}

#[test]
fn run_epochs_averages_match_manual_average() {
    let data = Dataset::Products.generate_scaled(1.0 / 2048.0, 13);
    let mut sys = SystemKind::Dgl.build(config());
    let avg = sys.run_epochs(&data, 2);
    let mut fresh = SystemKind::Dgl.build(config());
    let e0 = fresh.run_epoch(&data, 0);
    let e1 = fresh.run_epoch(&data, 1);
    let manual = (e0.total() + e1.total()) / 2;
    let diff = avg.total().as_nanos().abs_diff(manual.as_nanos());
    assert!(diff <= 1, "avg {} vs manual {}", avg.total(), manual);
}
