//! Cross-crate convergence test: real models train through real sampled
//! subgraphs to a real loss, with and without FastGL's reordering
//! (the paper's Fig. 16 correctness claim).

use fastgl::core::trainer::{train, TrainerConfig};
use fastgl::gnn::ModelKind;
use fastgl::graph::generate::community::{self, CommunityConfig};
use fastgl::graph::NodeId;

fn data() -> community::CommunityGraph {
    community::generate(
        &CommunityConfig {
            num_nodes: 1_000,
            num_classes: 5,
            intra_degree: 12.0,
            inter_degree: 1.5,
            feature_dim: 24,
            feature_noise: 0.8,
        },
        99,
    )
}

fn config(model: ModelKind, reorder: bool) -> TrainerConfig {
    TrainerConfig {
        model,
        hidden_dim: 24,
        fanouts: vec![4, 4],
        batch_size: 128,
        learning_rate: 0.01,
        epochs: 4,
        reorder,
        window: 4,
        seed: 5,
    }
}

#[test]
fn gcn_and_gin_learn_community_labels() {
    let d = data();
    let nodes: Vec<NodeId> = (0..700).map(NodeId).collect();
    for model in [ModelKind::Gcn, ModelKind::Gin] {
        let run = train(
            &d.graph,
            &d.features,
            &d.labels,
            &nodes,
            &config(model, false),
        );
        let first = run.epoch_losses[0];
        let last = *run.epoch_losses.last().unwrap();
        assert!(last < first * 0.75, "{model}: {first} -> {last}");
        assert!(
            run.final_accuracy > 0.6,
            "{model}: accuracy {}",
            run.final_accuracy
        );
    }
}

#[test]
fn reordering_matches_default_convergence() {
    let d = data();
    let nodes: Vec<NodeId> = (0..700).map(NodeId).collect();
    for model in [ModelKind::Gcn, ModelKind::Gin] {
        let base = train(
            &d.graph,
            &d.features,
            &d.labels,
            &nodes,
            &config(model, false),
        );
        let reordered = train(
            &d.graph,
            &d.features,
            &d.labels,
            &nodes,
            &config(model, true),
        );
        let a = base.tail_loss(8);
        let b = reordered.tail_loss(8);
        assert!(
            (a - b).abs() < 0.2 * a.max(b).max(0.1),
            "{model}: converged losses diverge ({a} vs {b})"
        );
        // Both orders see the same number of iterations.
        assert_eq!(
            base.iteration_losses.len(),
            reordered.iteration_losses.len()
        );
    }
}

#[test]
fn gat_trains_through_sampled_subgraphs() {
    let d = data();
    let nodes: Vec<NodeId> = (0..500).map(NodeId).collect();
    let run = train(
        &d.graph,
        &d.features,
        &d.labels,
        &nodes,
        &config(ModelKind::Gat, false),
    );
    let first = run.epoch_losses[0];
    let last = *run.epoch_losses.last().unwrap();
    assert!(last < first, "GAT loss must decrease: {first} -> {last}");
}
