//! Integration tests of the three FastGL techniques acting through the
//! full pipeline: each must improve exactly the phase it targets, and
//! stacking them must never hurt.

use fastgl::core::{ComputeMode, FastGl, FastGlConfig, IdMapKind, TrainingSystem};
use fastgl::graph::{Dataset, DatasetBundle};

fn data() -> DatasetBundle {
    Dataset::Products.generate_scaled(1.0 / 256.0, 17)
}

/// Batch size small enough that each 2-GPU shard still runs several
/// mini-batches per epoch — Match needs consecutive batches to reuse.
fn naive_config() -> FastGlConfig {
    let mut c = FastGlConfig::default()
        .with_batch_size(64)
        .with_fanouts(vec![5, 10])
        .with_cache_ratio(0.0);
    c.enable_match = false;
    c.enable_reorder = false;
    c.compute_mode = ComputeMode::Naive;
    c.id_map = IdMapKind::Baseline;
    c
}

#[test]
fn match_reorder_cuts_io_and_only_io() {
    let data = data();
    let naive = FastGl::new(naive_config()).run_epochs(&data, 2);
    let mut cfg = naive_config();
    cfg.enable_match = true;
    cfg.enable_reorder = true;
    let mr = FastGl::new(cfg).run_epochs(&data, 2);
    assert!(
        mr.breakdown.io < naive.breakdown.io,
        "MR must cut IO: {} vs {}",
        mr.breakdown.io,
        naive.breakdown.io
    );
    assert_eq!(mr.breakdown.compute, naive.breakdown.compute);
    assert!(mr.rows_reused > 0);
    assert!(mr.bytes_h2d < naive.bytes_h2d);
}

#[test]
fn memory_aware_cuts_compute_and_only_compute() {
    let data = data();
    let naive = FastGl::new(naive_config()).run_epochs(&data, 2);
    let mut cfg = naive_config();
    cfg.compute_mode = ComputeMode::MemoryAware;
    let ma = FastGl::new(cfg).run_epochs(&data, 2);
    assert!(
        ma.breakdown.compute < naive.breakdown.compute,
        "MA must cut compute: {} vs {}",
        ma.breakdown.compute,
        naive.breakdown.compute
    );
    assert_eq!(ma.breakdown.io, naive.breakdown.io);
    assert_eq!(ma.breakdown.sample, naive.breakdown.sample);
}

#[test]
fn fused_map_cuts_sample_and_only_sample() {
    let data = data();
    let naive = FastGl::new(naive_config()).run_epochs(&data, 2);
    let mut cfg = naive_config();
    cfg.id_map = IdMapKind::Fused;
    let fm = FastGl::new(cfg).run_epochs(&data, 2);
    assert!(
        fm.breakdown.sample < naive.breakdown.sample,
        "FM must cut sample: {} vs {}",
        fm.breakdown.sample,
        naive.breakdown.sample
    );
    assert_eq!(fm.breakdown.io, naive.breakdown.io);
    assert_eq!(fm.breakdown.compute, naive.breakdown.compute);
    assert!(fm.id_map_time < naive.id_map_time);
}

#[test]
fn stacking_techniques_is_monotone() {
    let data = data();
    let naive = FastGl::new(naive_config()).run_epochs(&data, 2);
    let mut mr = naive_config();
    mr.enable_match = true;
    mr.enable_reorder = true;
    let s_mr = FastGl::new(mr.clone()).run_epochs(&data, 2);
    let mut mr_ma = mr;
    mr_ma.compute_mode = ComputeMode::MemoryAware;
    let s_mr_ma = FastGl::new(mr_ma.clone()).run_epochs(&data, 2);
    let mut full = mr_ma;
    full.id_map = IdMapKind::Fused;
    let s_full = FastGl::new(full).run_epochs(&data, 2);
    assert!(s_mr.total() < naive.total());
    assert!(s_mr_ma.total() < s_mr.total());
    assert!(s_full.total() < s_mr_ma.total());
}

#[test]
fn reorder_loads_no_more_rows_than_match_alone() {
    let data = data();
    let mut match_only = naive_config();
    match_only.enable_match = true;
    let mut reordered = match_only.clone();
    reordered.enable_reorder = true;
    let s_m = FastGl::new(match_only).run_epochs(&data, 3);
    let s_r = FastGl::new(reordered).run_epochs(&data, 3);
    assert!(
        s_r.rows_loaded <= s_m.rows_loaded,
        "reorder loaded {} rows, match-only {}",
        s_r.rows_loaded,
        s_m.rows_loaded
    );
}

#[test]
fn bigger_batches_raise_reuse_fraction() {
    // Paper Fig. 14b's mechanism: larger batches overlap more.
    let data = data();
    let reuse = |batch: u64| {
        let mut cfg = naive_config().with_batch_size(batch);
        cfg.enable_match = true;
        cfg.enable_reorder = true;
        let s = FastGl::new(cfg).run_epochs(&data, 2);
        s.rows_reused as f64 / (s.rows_reused + s.rows_loaded).max(1) as f64
    };
    let small = reuse(32);
    let large = reuse(128);
    assert!(
        large > small,
        "reuse fraction must grow with batch size: {small:.3} vs {large:.3}"
    );
}
