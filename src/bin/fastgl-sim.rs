//! `fastgl-sim` — command-line driver for the FastGL simulator.
//!
//! ```sh
//! fastgl-sim --dataset products --system fastgl --model gcn \
//!            --batch 256 --gpus 2 --scale 512 --epochs 3
//! fastgl-sim --dataset papers100m --system dgl --sampler walk --scale 2048
//! fastgl-sim --help
//! ```
//!
//! Runs one training system on one scaled dataset and prints the epoch
//! statistics the paper's tables are built from.

use fastgl::baselines::SystemKind;
use fastgl::core::FastGlConfig;
use fastgl::gnn::ModelKind;
use fastgl::graph::Dataset;
use std::process::ExitCode;

const HELP: &str = "\
fastgl-sim — simulate sampling-based GNN training (FastGL, ASPLOS'24)

USAGE:
    fastgl-sim [OPTIONS]

OPTIONS:
    --dataset <name>     reddit | products | mag | igb | papers100m  [products]
    --system <name>      fastgl | dgl | pyg | gnnlab | gnnadvisor | pagraph  [fastgl]
    --model <name>       gcn | gin | gat | sage  [gcn]
    --sampler <name>     neighbor | walk | layerwise  [neighbor]
    --batch <n>          mini-batch size  [256]
    --gpus <n>           simulated GPU count  [2]
    --scale <d>          dataset scale divisor (graph is 1/d of full size)  [512]
    --epochs <n>         epochs to average  [3]
    --fanouts <a,b,c>    per-hop fanouts  [5,10,15]
    --cache-ratio <f>    explicit cache ratio in [0,1]  [auto]
    --seed <n>           random seed  [42]
    --help               print this text
";

fn parse_args() -> Result<(Dataset, SystemKind, FastGlConfig, f64, u64), String> {
    let mut dataset = Dataset::Products;
    let mut system = SystemKind::FastGl;
    let mut config = FastGlConfig::default().with_batch_size(256).with_seed(42);
    let mut scale = 512.0;
    let mut epochs = 3u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            "--dataset" => {
                dataset = match value(&mut i)?.to_lowercase().as_str() {
                    "reddit" | "rd" => Dataset::Reddit,
                    "products" | "pr" => Dataset::Products,
                    "mag" => Dataset::Mag,
                    "igb" | "igb-large" => Dataset::IgbLarge,
                    "papers100m" | "pa" | "papers" => Dataset::Papers100M,
                    other => return Err(format!("unknown dataset '{other}'")),
                };
            }
            "--system" => {
                system = match value(&mut i)?.to_lowercase().as_str() {
                    "fastgl" => SystemKind::FastGl,
                    "dgl" => SystemKind::Dgl,
                    "pyg" => SystemKind::Pyg,
                    "gnnlab" => SystemKind::GnnLab,
                    "gnnadvisor" | "advisor" => SystemKind::GnnAdvisor,
                    "pagraph" => SystemKind::PaGraph,
                    other => return Err(format!("unknown system '{other}'")),
                };
            }
            "--model" => {
                let model = match value(&mut i)?.to_lowercase().as_str() {
                    "gcn" => ModelKind::Gcn,
                    "gin" => ModelKind::Gin,
                    "gat" => ModelKind::Gat,
                    "sage" => ModelKind::Sage,
                    other => return Err(format!("unknown model '{other}'")),
                };
                config = config.with_model(model);
            }
            "--sampler" => {
                config = match value(&mut i)?.to_lowercase().as_str() {
                    "neighbor" | "neighbour" => config,
                    "walk" | "randomwalk" => config.with_random_walk(),
                    "layerwise" | "ladies" => config.with_layer_wise(),
                    other => return Err(format!("unknown sampler '{other}'")),
                };
            }
            "--batch" => {
                config = config.with_batch_size(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --batch: {e}"))?,
                );
            }
            "--gpus" => {
                config = config.with_gpus(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --gpus: {e}"))?,
                );
            }
            "--scale" => {
                scale = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
                if scale < 1.0 {
                    return Err("--scale must be at least 1".into());
                }
            }
            "--epochs" => {
                epochs = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --epochs: {e}"))?;
            }
            "--fanouts" => {
                let fanouts: Result<Vec<usize>, _> =
                    value(&mut i)?.split(',').map(str::parse).collect();
                config = config.with_fanouts(fanouts.map_err(|e| format!("bad --fanouts: {e}"))?);
            }
            "--cache-ratio" => {
                config = config.with_cache_ratio(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --cache-ratio: {e}"))?,
                );
            }
            "--seed" => {
                config = config.with_seed(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?,
                );
            }
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
        i += 1;
    }
    config.validate()?;
    Ok((dataset, system, config, scale, epochs))
}

fn main() -> ExitCode {
    let (dataset, system, config, scale, epochs) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "generating {dataset} at 1/{scale:.0} scale (seed {})...",
        config.seed
    );
    let data = dataset.generate_scaled(1.0 / scale, config.seed);
    eprintln!(
        "graph: {} nodes, {} edges, {} features, {} train seeds",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.spec.feature_dim,
        data.train_nodes().len(),
    );
    if data.train_nodes().is_empty() {
        eprintln!("error: scaled dataset has no training nodes; lower --scale");
        return ExitCode::FAILURE;
    }

    let mut sys = system.build(config);
    let stats = sys.run_epochs(&data, epochs);
    let (s, i, c) = stats.breakdown.fractions();
    println!("system        : {}", sys.name());
    println!("epoch time    : {}", stats.total());
    println!(
        "  sample      : {} ({:.1}%)",
        stats.breakdown.sample,
        s * 100.0
    );
    println!("  memory IO   : {} ({:.1}%)", stats.breakdown.io, i * 100.0);
    println!(
        "  compute     : {} ({:.1}%)",
        stats.breakdown.compute,
        c * 100.0
    );
    println!("iterations    : {}", stats.iterations);
    println!("rows loaded   : {}", stats.rows_loaded);
    println!("rows reused   : {}", stats.rows_reused);
    println!("rows cached   : {}", stats.rows_cached);
    println!("PCIe traffic  : {:.2} MB", stats.bytes_h2d as f64 / 1e6);
    println!("edges sampled : {}", stats.edges_sampled);
    println!("id-map time   : {}", stats.id_map_time);
    println!(
        "peak memory   : {:.1} MB (modelled)",
        stats.peak_memory_bytes as f64 / 1e6
    );
    if stats.l1_hit_rate > 0.0 {
        println!(
            "agg hit rates : L1 {:.1}% / L2 {:.1}%",
            stats.l1_hit_rate * 100.0,
            stats.l2_hit_rate * 100.0
        );
    }
    println!("agg GFLOP/s   : {:.0}", stats.aggregation_gflops);
    ExitCode::SUCCESS
}
