//! # FastGL
//!
//! A GPU-efficient framework for accelerating sampling-based GNN training at
//! large scale — a from-scratch Rust reproduction of the ASPLOS 2024 paper,
//! with the GPU replaced by a deterministic memory-hierarchy simulator.
//!
//! This facade crate re-exports the public API of every workspace crate:
//!
//! * [`graph`] — CSR graphs, synthetic generators, the dataset registry.
//! * [`gpusim`] — the simulated GPU (caches, PCIe, kernel cost model).
//! * [`tensor`] — dense linear algebra backing the GNN models.
//! * [`sample`] — subgraph samplers and ID-map strategies (incl. Fused-Map).
//! * [`gnn`] — GCN / GIN / GAT models with real gradients.
//! * [`core`] — the paper's contribution: Match-Reorder, Memory-Aware
//!   computation, and the FastGL training pipeline.
//! * [`baselines`] — PyG-, DGL-, GNNLab-, GNNAdvisor-, and PaGraph-like
//!   systems on the same substrate.
//! * [`telemetry`] — spans, counters, and histograms over the training hot
//!   paths, exported as chrome-trace and JSON (enable with
//!   `FASTGL_TELEMETRY=1`).
//!
//! # Quickstart
//!
//! ```
//! use fastgl::core::{FastGl, FastGlConfig};
//! use fastgl::core::system::TrainingSystem;
//! use fastgl::graph::Dataset;
//!
//! let bundle = Dataset::Products.generate_scaled(1.0 / 2048.0, 42);
//! let config = FastGlConfig::default().with_batch_size(256);
//! let mut system = FastGl::new(config);
//! let stats = system.run_epoch(&bundle, 0);
//! assert!(stats.total().as_secs_f64() > 0.0);
//! ```

pub use fastgl_baselines as baselines;
pub use fastgl_core as core;
pub use fastgl_gnn as gnn;
pub use fastgl_gpusim as gpusim;
pub use fastgl_graph as graph;
pub use fastgl_sample as sample;
pub use fastgl_telemetry as telemetry;
pub use fastgl_tensor as tensor;
