//! Real training: verify FastGL's reordering does not change what the
//! model learns (paper Fig. 16).
//!
//! ```sh
//! cargo run --release --example train_convergence
//! ```
//!
//! Trains an actual GCN (real gradients, Adam) on a labelled community
//! graph twice — once in the sampled mini-batch order (DGL) and once with
//! the greedy Reorder applied per window (FastGL) — and prints both loss
//! trajectories side by side.

use fastgl::core::trainer::{train, TrainerConfig};
use fastgl::gnn::ModelKind;
use fastgl::graph::generate::community::{self, CommunityConfig};
use fastgl::graph::NodeId;

fn main() {
    let data = community::generate(
        &CommunityConfig {
            num_nodes: 3_000,
            num_classes: 8,
            intra_degree: 14.0,
            inter_degree: 2.0,
            feature_dim: 32,
            feature_noise: 1.0,
        },
        11,
    );
    let train_nodes: Vec<NodeId> = (0..2_000).map(NodeId).collect();
    println!(
        "community graph: {} nodes, {} edges, 8 classes; training a 2-layer GCN",
        data.graph.num_nodes(),
        data.graph.num_edges(),
    );

    let config = |reorder: bool| TrainerConfig {
        model: ModelKind::Gcn,
        hidden_dim: 32,
        fanouts: vec![4, 4],
        batch_size: 256,
        learning_rate: 0.01,
        epochs: 6,
        reorder,
        window: 4,
        seed: 11,
    };
    let dgl = train(
        &data.graph,
        &data.features,
        &data.labels,
        &train_nodes,
        &config(false),
    );
    let fastgl = train(
        &data.graph,
        &data.features,
        &data.labels,
        &train_nodes,
        &config(true),
    );

    println!("\n{:>6} {:>12} {:>12}", "epoch", "DGL loss", "FastGL loss");
    for (e, (a, b)) in dgl
        .epoch_losses
        .iter()
        .zip(&fastgl.epoch_losses)
        .enumerate()
    {
        println!("{e:>6} {a:>12.4} {b:>12.4}");
    }
    println!(
        "\nfinal train accuracy: DGL {:.3}, FastGL {:.3}",
        dgl.final_accuracy, fastgl.final_accuracy,
    );
    println!(
        "converged (tail) loss: DGL {:.4}, FastGL {:.4} — approximately equal, \
         as the paper's Fig. 16 shows.",
        dgl.tail_loss(10),
        fastgl.tail_loss(10),
    );
}
