//! Social-network scenario: GAT on a Reddit-like graph, and what
//! Match-Reorder buys on a dense social topology.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```
//!
//! Reddit's average degree of ~470 makes sampled subgraphs overlap up to
//! 93% (paper Table 4) — the best case for Match-Reorder. This example
//! measures the actual match degrees of a sampled window, then compares
//! epoch IO with Match/Reorder on and off.

use fastgl::core::sampler::SamplerEngine;
use fastgl::core::{FastGl, FastGlConfig, TrainingSystem};
use fastgl::gnn::ModelKind;
use fastgl::graph::{Dataset, DeterministicRng};
use fastgl::sample::overlap::{match_degree_matrix, summarize_matrix};
use fastgl::sample::MinibatchPlan;
use fastgl::telemetry;

fn main() {
    let data = Dataset::Reddit.generate_scaled(1.0 / 64.0, 7);
    telemetry::reset();
    println!(
        "Reddit stand-in: {} nodes, {} edges (avg degree {:.0})",
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.graph.average_degree(),
    );

    let config = FastGlConfig::default()
        .with_model(ModelKind::Gat)
        .with_batch_size(256)
        .with_fanouts(vec![5, 10]);

    // 1. How much do sampled mini-batches overlap?
    let sampler = SamplerEngine::new(&config);
    let plan = MinibatchPlan::new(data.train_nodes(), 256, 7, 0);
    let mut rng = DeterministicRng::seed(7);
    let sets: Vec<_> = plan
        .iter()
        .take(8)
        .map(|seeds| {
            sampler
                .sample_batch(&data.graph, seeds, &mut rng)
                .0
                .sorted_global_ids()
                .to_vec()
        })
        .collect();
    let summary = summarize_matrix(&match_degree_matrix(&sets));
    println!(
        "match degree across a window of 8 mini-batches: avg {:.1}%, spread {:.1}% \
         (paper Reddit: 93.2% / 4.9%)",
        summary.average * 100.0,
        summary.spread * 100.0,
    );

    // 2. What does that overlap buy?
    let mut without = {
        let mut c = config.clone().with_cache_ratio(0.0);
        c.enable_match = false;
        c.enable_reorder = false;
        FastGl::new(c)
    };
    let mut with_mr = FastGl::new(config.with_cache_ratio(0.0));
    let s_without = without.run_epochs(&data, 3);
    let s_with = with_mr.run_epochs(&data, 3);
    println!(
        "\nGAT epoch IO: {} without Match-Reorder, {} with ({}x less PCIe traffic)",
        s_without.breakdown.io,
        s_with.breakdown.io,
        s_without.bytes_h2d / s_with.bytes_h2d.max(1),
    );
    println!(
        "rows loaded {} -> {}, reused {} of the incoming batches",
        s_without.rows_loaded, s_with.rows_loaded, s_with.rows_reused,
    );
    println!(
        "epoch time {} -> {} ({:.2}x)",
        s_without.total(),
        s_with.total(),
        s_without.total().as_secs_f64() / s_with.total().as_secs_f64(),
    );

    // With FASTGL_TELEMETRY=1 the whole scenario (sampling probes plus
    // both epochs runs) is summarised and exported for Perfetto.
    if telemetry::enabled() {
        let snap = telemetry::drain();
        print!("\n{}", telemetry::export::summary(&snap));
        let dir = std::path::Path::new("results/telemetry");
        match telemetry::export::write_to_dir(&snap, dir, "social_network") {
            Ok((trace, perf)) => println!("telemetry: {} + {}", trace.display(), perf.display()),
            Err(e) => eprintln!("warning: could not write telemetry: {e}"),
        }
    }
}
