//! Quickstart: simulate one epoch of FastGL vs DGL on a Products stand-in.
//!
//! ```sh
//! cargo run --release --example quickstart
//! FASTGL_TELEMETRY=1 cargo run --release --example quickstart
//! ```
//!
//! Generates a scaled synthetic ogbn-products, runs a GCN training epoch
//! under both pipelines on the simulated 2-GPU RTX 3090 server, and prints
//! the phase breakdown the paper's Fig. 1/3 are built from. With
//! `FASTGL_TELEMETRY=1` the per-phase lines come from the telemetry
//! subsystem's summary exporter instead, and FastGL's run is exported as
//! `results/telemetry/quickstart.trace.json` (load it in Perfetto /
//! `chrome://tracing`) plus `quickstart.telemetry.json`.

use fastgl::baselines::SystemKind;
use fastgl::core::FastGlConfig;
use fastgl::graph::Dataset;
use fastgl::telemetry;

fn main() {
    // A 1/512-scale ogbn-products: same degree structure, 200-wide
    // features, 47 classes.
    let data = Dataset::Products.generate_scaled(1.0 / 512.0, 42);
    println!(
        "dataset: {} ({} nodes, {} edges, {} features, {} train seeds)",
        data.spec.dataset,
        data.graph.num_nodes(),
        data.graph.num_edges(),
        data.spec.feature_dim,
        data.train_nodes().len(),
    );

    let config = FastGlConfig::default()
        .with_batch_size(256)
        .with_fanouts(vec![5, 10, 15]);

    telemetry::reset();
    let mut totals = Vec::new();
    for kind in [SystemKind::Dgl, SystemKind::FastGl] {
        let mut system = kind.build(config.clone());
        let stats = system.run_epochs(&data, 3);
        println!("\n== {} ==", kind.name());
        println!("  epoch time : {}", stats.total());
        println!(
            "  feature rows: {} loaded over PCIe, {} reused (Match), {} cached",
            stats.rows_loaded, stats.rows_reused, stats.rows_cached,
        );
        println!("  bytes over PCIe: {:.1} MB", stats.bytes_h2d as f64 / 1e6);
        if telemetry::enabled() {
            // The summary exporter renders the same sample/io/compute
            // breakdown (plus wall-clock spans and counters) straight from
            // the telemetry the pipeline recorded.
            let snap = telemetry::drain();
            print!("\n{}", telemetry::export::summary(&snap));
            if matches!(kind, SystemKind::FastGl) {
                let dir = std::path::Path::new("results/telemetry");
                match telemetry::export::write_to_dir(&snap, dir, "quickstart") {
                    Ok((trace, perf)) => {
                        println!("telemetry: {} + {}", trace.display(), perf.display());
                    }
                    Err(e) => eprintln!("warning: could not write telemetry: {e}"),
                }
            }
        } else {
            let (s, i, c) = stats.breakdown.fractions();
            println!(
                "  phases     : sample {} ({:.0}%) | io {} ({:.0}%) | compute {} ({:.0}%)",
                stats.breakdown.sample,
                s * 100.0,
                stats.breakdown.io,
                i * 100.0,
                stats.breakdown.compute,
                c * 100.0,
            );
            println!("  (set FASTGL_TELEMETRY=1 for the full span/counter summary)");
        }
        totals.push(stats.total());
    }

    println!(
        "\nFastGL speedup over DGL: {:.2}x (paper average: 2.2x)",
        totals[0].as_secs_f64() / totals[1].as_secs_f64()
    );
}
