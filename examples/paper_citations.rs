//! Large-scale citation-graph scenario: the memory-constrained regime of
//! Papers100M, where cache-based systems starve and Match-Reorder shines.
//!
//! ```sh
//! cargo run --release --example paper_citations
//! ```
//!
//! Reproduces the paper's core argument (§3.1 + Fig. 10a) on a Papers100M
//! stand-in: estimates how much device memory the workload leaves at full
//! scale, then sweeps the cache ratio to show FastGL's advantage grows
//! exactly where caches cannot help.

use fastgl::baselines::GnnLabSystem;
use fastgl::core::memory_model::estimate_unique_nodes;
use fastgl::core::{FastGl, FastGlConfig, TrainingSystem};
use fastgl::graph::Dataset;

fn main() {
    // 1. Full-scale argument: how big is a sampled subgraph on the real
    //    Papers100M, and what does it leave of 24 GB?
    let full = Dataset::Papers100M.spec();
    let nodes = estimate_unique_nodes(full.num_nodes, full.average_degree(), 8_000, &[5, 10, 15]);
    let feature_buffer_gb = nodes as f64 * full.feature_dim as f64 * 4.0 / 1e9;
    println!(
        "Papers100M at full scale: a batch-8000 [5,10,15] subgraph reaches \
         ~{:.1}M nodes,\nwhose feature staging alone needs ~{:.1} GB — \
         little of the 24 GB remains for a cache (paper Table 1: ~1 GB).",
        nodes as f64 / 1e6,
        feature_buffer_gb,
    );

    // 2. Scaled measurement: IO time vs cache ratio, GNNLab vs FastGL.
    let data = Dataset::Papers100M.generate_scaled(1.0 / 2048.0, 5);
    println!(
        "\nscaled stand-in: {} nodes, {} edges; sweeping cache ratio:",
        data.graph.num_nodes(),
        data.graph.num_edges(),
    );
    let base = FastGlConfig::default().with_batch_size(128);
    println!(
        "{:>12} {:>14} {:>14}",
        "cache ratio", "GNNLab IO", "FastGL IO"
    );
    for ratio in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut lab = GnnLabSystem::with_cache_ratio(base.clone(), ratio);
        let mut fast = FastGl::new(base.clone().with_cache_ratio(ratio));
        let io_lab = lab.run_epochs(&data, 2).breakdown.io;
        let io_fast = fast.run_epochs(&data, 2).breakdown.io;
        println!(
            "{ratio:>12.1} {:>14} {:>14}",
            io_lab.to_string(),
            io_fast.to_string()
        );
    }
    println!(
        "\npaper shape (Fig. 10a): with little cache (left rows) FastGL's \
         Match-Reorder wins decisively;\nwith abundant cache both converge \
         and FastGL keeps a minor edge."
    );
}
