//! Bring your own graph: load an edge list, wrap it as a dataset, and
//! compare training systems on it.
//!
//! ```sh
//! cargo run --release --example custom_graph [path/to/edges.txt]
//! ```
//!
//! Without an argument the example writes a small demo edge list to a
//! temporary file first, so it runs out of the box. The edge-list format
//! is one `src dst` pair per line; `#` comments allowed.

use fastgl::baselines::SystemKind;
use fastgl::core::FastGlConfig;
use fastgl::graph::datasets::{DatasetBundle, DatasetSpec};
use fastgl::graph::{io, Dataset, DegreeStats, FeatureStore, NodeSplit};
use std::path::PathBuf;

fn demo_edge_list() -> PathBuf {
    // A synthetic co-authorship-like graph written as a plain edge list.
    use fastgl::graph::generate::rmat::{self, RmatConfig};
    let g = rmat::generate(&RmatConfig::citation(4_000, 40_000), 123);
    let path = std::env::temp_dir().join("fastgl_demo_edges.txt");
    let file = std::fs::File::create(&path).expect("create demo file");
    io::write_edge_list(&g, file).expect("write demo edge list");
    path
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(demo_edge_list);
    println!("loading edge list from {}", path.display());

    let content = std::fs::read_to_string(&path).expect("read edge list");
    // Infer the node count from the maximum endpoint.
    let max_id = content
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .flat_map(|l| l.split_whitespace().take(2))
        .filter_map(|t| t.parse::<u64>().ok())
        .max()
        .expect("edge list contains no edges");
    let graph = io::read_edge_list(content.as_bytes(), max_id + 1, true).expect("parse edge list");

    let stats = DegreeStats::compute(&graph);
    println!(
        "graph: {} nodes, {} edges, mean degree {:.1}, max {}, gini {:.3}",
        stats.num_nodes, stats.num_edges, stats.mean, stats.max, stats.gini
    );

    // Wrap the raw topology as a dataset: declare feature width and class
    // count (virtual features are enough for timing studies), and split
    // the nodes into train/val/test.
    let spec = DatasetSpec {
        dataset: Dataset::Products, // family label for RNG seeding only
        num_nodes: graph.num_nodes(),
        num_edges: graph.num_edges(),
        feature_dim: 128,
        num_classes: 16,
        train_fraction: 0.2,
        scale: 1.0 / 64.0, // tells the simulator which regime to model
    };
    let bundle = DatasetBundle {
        spec,
        features: FeatureStore::virtual_store(graph.num_nodes(), 128),
        split: NodeSplit::stratified(graph.num_nodes(), 0.2, 0.1, 7),
        graph,
    };

    let cfg = FastGlConfig::default()
        .with_batch_size(128)
        .with_fanouts(vec![5, 10]);
    println!(
        "\n{:>12} {:>12} {:>10} {:>10} {:>10}",
        "system", "epoch", "sample", "io", "compute"
    );
    for kind in [SystemKind::Dgl, SystemKind::GnnLab, SystemKind::FastGl] {
        let mut sys = kind.build(cfg.clone());
        let s = sys.run_epochs(&bundle, 3);
        println!(
            "{:>12} {:>12} {:>10} {:>10} {:>10}",
            kind.name(),
            s.total().to_string(),
            s.breakdown.sample.to_string(),
            s.breakdown.io.to_string(),
            s.breakdown.compute.to_string(),
        );
    }
}
