//! Recommender-system scenario: PinSAGE-style random-walk sampling on a
//! co-purchase graph (paper Table 7's setting).
//!
//! ```sh
//! cargo run --release --example recommender
//! ```
//!
//! Web-scale recommenders (PinSAGE) define neighbourhoods by short random
//! walks rather than hop-wise fanouts. The paper shows Match-Reorder still
//! accelerates the memory IO phase there, because walk neighbourhoods of
//! nearby seeds overlap just like fanout neighbourhoods do.

use fastgl::core::{FastGl, FastGlConfig, TrainingSystem};
use fastgl::graph::{Dataset, DeterministicRng, NodeId};
use fastgl::sample::{FusedIdMap, RandomWalkSampler};

fn main() {
    // The co-purchase network (ogbn-products) at 1/512 scale.
    let data = Dataset::Products.generate_scaled(1.0 / 512.0, 21);
    println!(
        "co-purchase graph: {} products, {} edges",
        data.graph.num_nodes(),
        data.graph.num_edges(),
    );

    // Peek at one walk-sampled neighbourhood.
    let sampler = RandomWalkSampler::paper_default();
    let mut rng = DeterministicRng::seed(3);
    let (sg, stats) = sampler.sample(
        &data.graph,
        &data.train_nodes()[..64.min(data.train_nodes().len())],
        &FusedIdMap::new(),
        &mut rng,
    );
    println!(
        "walk sampling (len {}, {} walks/seed): {} distinct nodes from {} draws for 64 seeds",
        sampler.walk_length,
        sampler.num_walks,
        sg.num_nodes(),
        stats.edges_sampled,
    );

    // Table 7's comparison: DGL-style loading vs Match vs Match+Reorder.
    let base = FastGlConfig::default()
        .with_batch_size(128)
        .with_gpus(1)
        .with_cache_ratio(0.0)
        .with_random_walk();
    let epoch_io = |enable_match: bool, enable_reorder: bool| {
        let mut c = base.clone();
        c.enable_match = enable_match;
        c.enable_reorder = enable_reorder;
        FastGl::new(c).run_epochs(&data, 3)
    };
    let dgl = epoch_io(false, false);
    let match_only = epoch_io(true, false);
    let full = epoch_io(true, true);
    println!("\nmemory IO per epoch (paper Table 7's comparison):");
    println!("  DGL-style          : {} (1.00x)", dgl.breakdown.io);
    println!(
        "  FastGL-nG (Match)  : {} ({:.2}x)",
        match_only.breakdown.io,
        dgl.breakdown.io.as_secs_f64() / match_only.breakdown.io.as_secs_f64(),
    );
    println!(
        "  FastGL (M+Reorder) : {} ({:.2}x)",
        full.breakdown.io,
        dgl.breakdown.io.as_secs_f64() / full.breakdown.io.as_secs_f64(),
    );
    let _ = NodeId(0);
}
