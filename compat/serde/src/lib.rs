//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and spec
//! types but never actually serializes them (no `serde_json` or similar
//! backend is in the dependency tree). Since the build environment cannot
//! reach crates.io, this crate supplies marker traits with the same names
//! and a `derive` feature producing trivial impls, keeping every
//! `#[derive(Serialize, Deserialize)]` site compiling unchanged. If a real
//! serialization backend is ever needed, swap the workspace dependency back
//! to the real `serde` — call sites need no changes.

#![warn(missing_docs)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {}
impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {}
