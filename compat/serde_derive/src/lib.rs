//! Derive macros for the offline `serde` stand-in.
//!
//! Parses just enough of the item (attributes, visibility, `struct`/`enum`
//! keyword, name) to emit a trivial marker impl. Generic types are rejected
//! with a clear compile error — no type in this workspace derives serde
//! traits generically, and a trivial impl would need bound propagation.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the struct/enum/union a derive is attached to.
///
/// Returns `Err` with a diagnostic if the item shape is unsupported.
fn item_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes (`#` followed by a bracketed group).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip a following `(crate)` / `(super)` group.
                        if let Some(TokenTree::Group(_)) = iter.peek() {
                            let _ = iter.next();
                        }
                    }
                    "struct" | "enum" | "union" => {
                        let name = match iter.next() {
                            Some(TokenTree::Ident(name)) => name.to_string(),
                            other => return Err(format!("expected item name, found {other:?}")),
                        };
                        if let Some(TokenTree::Punct(p)) = iter.peek() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "the offline serde stand-in cannot derive for \
                                     generic type `{name}`"
                                ));
                            }
                        }
                        return Ok(name);
                    }
                    // Qualifiers that may precede the item keyword.
                    "const" | "unsafe" | "extern" | "crate" => {}
                    other => return Err(format!("unsupported item starting with `{other}`")),
                }
            }
            _ => {}
        }
    }
    Err("no struct/enum found in derive input".to_string())
}

fn emit(input: TokenStream, template: &str) -> TokenStream {
    match item_name(input) {
        Ok(name) => template.replace("__NAME__", &name).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, "impl ::serde::Serialize for __NAME__ {}")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, "impl<'de> ::serde::Deserialize<'de> for __NAME__ {}")
}
