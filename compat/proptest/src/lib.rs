//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, integer-range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!` family. Tests written
//! against it run each body over a fixed number of deterministically
//! generated random inputs (default 32, `PROPTEST_CASES` overrides).
//!
//! What is deliberately missing versus real proptest: shrinking (a failing
//! case is reported with its generated inputs but not minimised),
//! `any::<T>()`, filters, and custom strategy combinators. The workspace's
//! tests use none of these.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic RNG driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test-name hash and case index.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;
    /// Draws one input.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy generating `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::new_value(&self.len, rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// Stable hash of a test name, used to decorrelate per-test RNG streams.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let base = $crate::seed_of(stringify!($name));
                for case in 0..$crate::cases() {
                    let mut proptest_rng =
                        $crate::TestRng::new(base.wrapping_add(case.wrapping_mul(0x2545F4914F6CDD1D)));
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, Strategy, TestRng};

    /// Namespace mirror so `prop::collection::vec(...)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, pair in (0u32..5, 10usize..20)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((10..20).contains(&pair.1));
        }

        /// Vec strategy respects the length range.
        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u64..100, 2..50)) {
            prop_assert!((2..50).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::new(7);
        let mut b = super::TestRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
