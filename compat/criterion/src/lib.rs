//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of criterion's API the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop.
//!
//! Statistics are deliberately simple: each benchmark is warmed up once,
//! then run until it accumulates enough samples (or a time budget), and the
//! mean, minimum, and throughput are printed. That is enough to compare a
//! serial and a parallel implementation of the same kernel, which is what
//! the workspace's perf trajectory records; it makes no attempt at
//! criterion's outlier analysis or HTML reports.

#![warn(missing_docs)]

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Per-iteration time budget controls for one benchmark run.
#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    /// Target number of timed samples.
    samples: usize,
    /// Hard wall-clock budget per benchmark.
    budget: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            samples: 20,
            budget: Duration::from_millis(1500),
        }
    }
}

/// Work performed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering (`BenchmarkId::new("gemm", "1000x200x64")`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// An id rendering only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    min: Option<Duration>,
    iters: u64,
    config: MeasureConfig,
}

impl Bencher {
    fn with_config(config: MeasureConfig) -> Self {
        Self {
            total: Duration::ZERO,
            min: None,
            iters: 0,
            config,
        }
    }

    /// Times repeated executions of `routine`.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up (untimed): page in code and data.
        black_box(routine());
        let deadline = Instant::now() + self.config.budget;
        for _ in 0..self.config.samples.max(1) {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.total += dt;
            self.min = Some(self.min.map_or(dt, |m| m.min(dt)));
            self.iters += 1;
            if Instant::now() >= deadline && self.iters >= 3 {
                break;
            }
        }
    }

    fn mean(&self) -> Option<Duration> {
        (self.iters > 0).then(|| self.total / self.iters as u32)
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(group: &str, bench: &str, b: &Bencher, throughput: Option<Throughput>) {
    let Some(mean) = b.mean() else {
        println!("{group}/{bench}: no samples");
        return;
    };
    let min = b.min.unwrap_or(mean);
    let rate = throughput.map(|t| {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:>10.3} Melem/s", n as f64 / secs / 1e6),
            Throughput::Bytes(n) => format!("  {:>10.3} MiB/s", n as f64 / secs / (1 << 20) as f64),
        }
    });
    println!(
        "{group}/{bench}: mean {} (min {}, {} iters){}",
        format_duration(mean),
        format_duration(min),
        b.iters,
        rate.unwrap_or_default()
    );
}

/// A named collection of related benchmarks sharing throughput/sample
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    config: MeasureConfig,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.config.samples = samples;
        self
    }

    /// Sets the per-iteration work used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark that takes no external input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::with_config(self.config);
        f(&mut b);
        report(&self.name, &id.name, &b, self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::with_config(self.config);
        f(&mut b, input);
        report(&self.name, &id.name, &b, self.throughput);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            config: MeasureConfig::default(),
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::with_config(MeasureConfig::default());
        let name = name.to_string();
        f(&mut b);
        report("bench", &name, &b, None);
        self
    }
}

/// Declares a function that runs the listed benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, |a, b| a.wrapping_add(black_box(b)))
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_config(MeasureConfig {
            samples: 5,
            budget: Duration::from_millis(50),
        });
        b.iter(|| sum_to(1000));
        assert!(b.iters >= 1);
        assert!(b.mean().is_some());
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        g.bench_function("sum", |b| b.iter(|| sum_to(1000)));
        g.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| sum_to(n))
        });
        g.finish();
    }
}
