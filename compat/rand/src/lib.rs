//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the *exact* subset of `rand` 0.8's API that the
//! workspace uses: the [`RngCore`] trait, the [`Rng`] extension trait with
//! `gen::<T>()`, and the [`Error`] type. All of the workspace's actual
//! randomness comes from `fastgl_graph::DeterministicRng`, which implements
//! [`RngCore`]; nothing here generates entropy of its own.

#![warn(missing_docs)]

use std::fmt;

/// Error type reported by fallible RNG operations.
///
/// The deterministic generators used in this workspace never fail, so this
/// type is never constructed outside of trait plumbing.
#[derive(Debug)]
pub struct Error {
    _private: (),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output, standing in
/// for `rand`'s `Standard` distribution.
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty => $via:ident),*) => {
        $(impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })*
    };
}

impl_sample_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` using 24 mantissa bits, like `rand`'s `Standard`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` using 53 mantissa bits, like `rand`'s `Standard`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn gen_is_deterministic_per_rng_state() {
        let a: u64 = Counter(7).gen();
        let b: u64 = Counter(7).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..100 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }
}
